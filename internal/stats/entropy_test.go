package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEntropyCountsUniform(t *testing.T) {
	// Uniform over 4 categories: exactly 2 bits.
	h := EntropyCounts([]int{5, 5, 5, 5})
	if !approxEq(h, 2, 1e-12) {
		t.Fatalf("uniform 4-way entropy = %v, want 2", h)
	}
}

func TestEntropyCountsDegenerate(t *testing.T) {
	if h := EntropyCounts([]int{10, 0, 0}); h != 0 {
		t.Fatalf("point-mass entropy = %v, want 0", h)
	}
	if h := EntropyCounts(nil); h != 0 {
		t.Fatalf("empty entropy = %v, want 0", h)
	}
	if h := EntropyCounts([]int{0, 0}); h != 0 {
		t.Fatalf("all-zero entropy = %v, want 0", h)
	}
}

func TestEntropyCountsBiased(t *testing.T) {
	// 90:10 split: H = -(0.9 log2 0.9 + 0.1 log2 0.1) ≈ 0.468996 bits.
	h := EntropyCounts([]int{90, 10})
	if !approxEq(h, 0.46899559358928133, 1e-12) {
		t.Fatalf("90:10 entropy = %v", h)
	}
	// The paper's Appendix D guard treats H(Y) < 0.5 as "roughly a 90:10
	// split"; sanity-check that boundary.
	if h >= 0.5 {
		t.Fatalf("90:10 entropy %v should be below the 0.5-bit guard", h)
	}
}

func TestEntropyProbsMatchesCounts(t *testing.T) {
	counts := []int{3, 1, 4, 1, 5, 9}
	probs := make([]float64, len(counts))
	for i, c := range counts {
		probs[i] = float64(c)
	}
	if !approxEq(EntropyCounts(counts), EntropyProbs(probs), 1e-12) {
		t.Fatal("EntropyProbs should agree with EntropyCounts on proportional inputs")
	}
}

func TestEntropyProbsUnnormalized(t *testing.T) {
	a := EntropyProbs([]float64{0.5, 0.5})
	b := EntropyProbs([]float64{2, 2})
	if !approxEq(a, b, 1e-12) || !approxEq(a, 1, 1e-12) {
		t.Fatalf("unnormalized probs should renormalize: %v vs %v", a, b)
	}
}

func TestEntropyCodesIgnoresOutOfRange(t *testing.T) {
	codes := []int32{0, 1, 0, 1, -1, 7}
	h := Entropy(codes, 2)
	if !approxEq(h, 1, 1e-12) {
		t.Fatalf("entropy with out-of-range codes = %v, want 1", h)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// Perfectly independent A and B: MI must be 0.
	var a, b []int32
	for i := 0; i < 400; i++ {
		a = append(a, int32(i%2))
		b = append(b, int32((i/2)%2))
	}
	mi := MutualInformation(a, 2, b, 2)
	if !approxEq(mi, 0, 1e-12) {
		t.Fatalf("independent MI = %v, want 0", mi)
	}
}

func TestMutualInformationIdentical(t *testing.T) {
	// A = B uniform binary: I(A;B) = H(A) = 1 bit.
	var a []int32
	for i := 0; i < 100; i++ {
		a = append(a, int32(i%2))
	}
	mi := MutualInformation(a, 2, a, 2)
	if !approxEq(mi, 1, 1e-12) {
		t.Fatalf("I(A;A) = %v, want 1", mi)
	}
}

func TestMutualInformationSymmetric(t *testing.T) {
	r := NewRNG(7)
	a := make([]int32, 500)
	b := make([]int32, 500)
	for i := range a {
		a[i] = int32(r.IntN(4))
		b[i] = int32((int(a[i]) + r.IntN(3)) % 5)
	}
	ab := MutualInformation(a, 4, b, 5)
	ba := MutualInformation(b, 5, a, 4)
	if !approxEq(ab, ba, 1e-12) {
		t.Fatalf("MI not symmetric: %v vs %v", ab, ba)
	}
}

func TestMutualInformationBounds(t *testing.T) {
	r := NewRNG(11)
	a := make([]int32, 300)
	b := make([]int32, 300)
	for i := range a {
		a[i] = int32(r.IntN(3))
		b[i] = int32(r.IntN(6))
	}
	mi := MutualInformation(a, 3, b, 6)
	ha, hb := Entropy(a, 3), Entropy(b, 6)
	if mi < 0 || mi > ha+1e-12 || mi > hb+1e-12 {
		t.Fatalf("MI %v violates bounds [0, min(%v, %v)]", mi, ha, hb)
	}
}

func TestConditionalEntropyChainRule(t *testing.T) {
	r := NewRNG(13)
	a := make([]int32, 400)
	b := make([]int32, 400)
	for i := range a {
		a[i] = int32(r.IntN(4))
		b[i] = int32((int(a[i])*2 + r.IntN(2)) % 8)
	}
	// H(A|B) = H(A) − I(A;B).
	got := ConditionalEntropy(a, 4, b, 8)
	want := Entropy(a, 4) - MutualInformation(a, 4, b, 8)
	if !approxEq(got, want, 1e-9) {
		t.Fatalf("chain rule violated: H(A|B)=%v, H(A)-I=%v", got, want)
	}
}

func TestConditionalEntropyDeterministic(t *testing.T) {
	// A is a function of B: H(A|B) = 0.
	var a, b []int32
	for i := 0; i < 60; i++ {
		b = append(b, int32(i%6))
		a = append(a, int32((i%6)/2))
	}
	if h := ConditionalEntropy(a, 3, b, 6); !approxEq(h, 0, 1e-12) {
		t.Fatalf("H(A|B) for functional A = %v, want 0", h)
	}
}

func TestInformationGainRatioConstantFeature(t *testing.T) {
	f := make([]int32, 50) // all zeros
	y := make([]int32, 50)
	for i := range y {
		y[i] = int32(i % 2)
	}
	if igr := InformationGainRatio(f, 1, y, 2); igr != 0 {
		t.Fatalf("IGR of constant feature = %v, want 0", igr)
	}
}

func TestInformationGainRatioUpperBound(t *testing.T) {
	r := NewRNG(17)
	f := make([]int32, 500)
	y := make([]int32, 500)
	for i := range f {
		f[i] = int32(r.IntN(5))
		y[i] = int32((int(f[i]) + r.IntN(2)) % 3)
	}
	igr := InformationGainRatio(f, 5, y, 3)
	if igr < 0 || igr > 1+1e-12 {
		t.Fatalf("IGR = %v outside [0,1]", igr)
	}
}

// TestTheorem31LogSum is the property-based test for the paper's Theorem 3.1:
// when F is functionally determined by FK (the FD FK → X_R that a KFK join
// materializes), I(F;Y) ≤ I(FK;Y) for every instance. We generate random
// FK→F mappings and random (FK, Y) data and verify the inequality.
func TestTheorem31LogSum(t *testing.T) {
	r := NewRNG(23)
	prop := func(seed uint64) bool {
		rr := NewRNG(seed)
		dFK := 2 + rr.IntN(20)
		dF := 1 + rr.IntN(6)
		dY := 2 + rr.IntN(3)
		n := 50 + rr.IntN(400)
		// FD mapping fk -> f value.
		fd := make([]int32, dFK)
		for i := range fd {
			fd[i] = int32(rr.IntN(dF))
		}
		fk := make([]int32, n)
		f := make([]int32, n)
		y := make([]int32, n)
		for i := 0; i < n; i++ {
			fk[i] = int32(rr.IntN(dFK))
			f[i] = fd[fk[i]]
			y[i] = int32(rr.IntN(dY))
			// Correlate Y with FK sometimes so MI is nontrivial.
			if rr.Bernoulli(0.5) {
				y[i] = int32(int(fk[i]) % dY)
			}
		}
		iF := MutualInformation(f, dF, y, dY)
		iFK := MutualInformation(fk, dFK, y, dY)
		return iF <= iFK+1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: nil}
	if err := quick.Check(func(s uint64) bool { _ = r; return prop(s) }, cfg); err != nil {
		t.Fatalf("Theorem 3.1 property violated: %v", err)
	}
}

// TestProposition32IGRCounterexample verifies Proposition 3.2: IGR can prefer
// a foreign feature over the FK. This is the concrete counterexample the
// paper says is trivial to construct: Y perfectly determined by F (so the MI
// terms are equal) but FK has a much larger domain, hence larger entropy and
// a smaller ratio.
func TestProposition32IGRCounterexample(t *testing.T) {
	// 8 FK values map pairwise onto 2 F values; Y == F.
	const n = 800
	fk := make([]int32, n)
	f := make([]int32, n)
	y := make([]int32, n)
	for i := 0; i < n; i++ {
		fk[i] = int32(i % 8)
		f[i] = fk[i] % 2
		y[i] = f[i]
	}
	igrF := InformationGainRatio(f, 2, y, 2)
	igrFK := InformationGainRatio(fk, 8, y, 2)
	if igrF <= igrFK {
		t.Fatalf("expected IGR(F;Y)=%v > IGR(FK;Y)=%v", igrF, igrFK)
	}
	// While the MI ordering of Theorem 3.1 still holds.
	if MutualInformation(f, 2, y, 2) > MutualInformation(fk, 8, y, 2)+1e-12 {
		t.Fatal("Theorem 3.1 violated in the counterexample instance")
	}
}

func TestConditionalMutualInformationMatchesUnconditional(t *testing.T) {
	// With a constant conditioning variable, I(A;B|C) == I(A;B).
	r := NewRNG(29)
	n := 300
	a := make([]int32, n)
	b := make([]int32, n)
	c := make([]int32, n) // constant zero
	for i := range a {
		a[i] = int32(r.IntN(3))
		b[i] = int32((int(a[i]) + r.IntN(2)) % 3)
	}
	got := ConditionalMutualInformation(a, 3, b, 3, c, 1)
	want := MutualInformation(a, 3, b, 3)
	if !approxEq(got, want, 1e-9) {
		t.Fatalf("CMI with constant C = %v, want %v", got, want)
	}
}

func TestConditionalMutualInformationNonnegative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rr := NewRNG(seed)
		n := 100 + rr.IntN(200)
		a := make([]int32, n)
		b := make([]int32, n)
		c := make([]int32, n)
		for i := 0; i < n; i++ {
			a[i] = int32(rr.IntN(3))
			b[i] = int32(rr.IntN(4))
			c[i] = int32(rr.IntN(2))
		}
		return ConditionalMutualInformation(a, 3, b, 4, c, 2) >= -1e-12
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatalf("CMI nonnegativity violated: %v", err)
	}
}

func TestJointCountsShape(t *testing.T) {
	a := []int32{0, 1, 1, 2}
	b := []int32{1, 0, 1, 1}
	j := JointCounts(a, 3, b, 2)
	want := []int{0, 1, 1, 1, 0, 1}
	for i := range want {
		if j[i] != want[i] {
			t.Fatalf("joint[%d] = %d, want %d (full %v)", i, j[i], want[i], j)
		}
	}
}

func TestMutualInformationCountsEmptyAndInvalid(t *testing.T) {
	if mi := MutualInformationCounts(nil, 2, 2); mi != 0 {
		t.Fatalf("MI of short table = %v, want 0", mi)
	}
	if mi := MutualInformationCounts([]int{0, 0, 0, 0}, 2, 2); mi != 0 {
		t.Fatalf("MI of zero table = %v, want 0", mi)
	}
	if mi := MutualInformationCounts([]int{1}, 0, 3); mi != 0 {
		t.Fatalf("MI with zero cardinality = %v, want 0", mi)
	}
}
