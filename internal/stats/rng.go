package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is the deterministic random source used throughout Hamlet-Go. It wraps
// math/rand/v2's PCG generator so that every experiment is exactly
// reproducible from an explicit pair of 64-bit seeds.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic generator for the given seed. The second PCG
// word is a fixed golden-ratio constant so that adjacent seeds produce
// decorrelated streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// Split derives an independent child stream from this generator. Each call
// consumes two words from the parent, so the sequence of children is itself
// deterministic.
func (r *RNG) Split() *RNG {
	return &RNG{rand.New(rand.NewPCG(r.Uint64(), r.Uint64()))}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Categorical samples an index from the (not necessarily normalized)
// nonnegative weight vector. It panics if the weights are empty or sum to a
// nonpositive value: callers construct these vectors and an invalid one is a
// programming error, not a data error.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if len(weights) == 0 || total <= 0 {
		panic("stats: Categorical requires a nonempty weight vector with positive mass")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm fills and returns a permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Zipf returns a sampler over [0, n) with Zipfian probabilities
// P(i) ∝ 1/(i+1)^s. The paper's Appendix D uses this as the "benign skew"
// distribution for foreign keys. The cumulative weights are precomputed so
// sampling is O(log n).
type Zipf struct {
	cum []float64
}

// NewZipf constructs a Zipf sampler over n categories with skew parameter s.
// s = 0 degenerates to the uniform distribution; larger s concentrates mass
// on low-index categories. It panics if n <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf requires n > 0")
	}
	cum := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1.0 / pow(float64(i+1), s)
		cum[i] = acc
	}
	return &Zipf{cum: cum}
}

// Probs returns the normalized probability vector of the sampler.
func (z *Zipf) Probs() []float64 {
	n := len(z.cum)
	total := z.cum[n-1]
	p := make([]float64, n)
	prev := 0.0
	for i, c := range z.cum {
		p[i] = (c - prev) / total
		prev = c
	}
	return p
}

// Sample draws one category index.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow wraps math.Pow with fast paths for the common exponents used by the
// samplers at construction time.
func pow(base, exp float64) float64 {
	switch exp {
	case 0:
		return 1
	case 1:
		return base
	}
	return math.Pow(base, exp)
}

// NeedleAndThread is the paper's malign-skew foreign-key distribution
// (Appendix D, Figure 13(B)): one "needle" FK value carries probability mass
// p and maps to one value of the predictive foreign feature (and hence one Y
// value); the remaining mass 1−p is spread uniformly over the other n−1 FK
// values, all of which map to the other foreign-feature value.
type NeedleAndThread struct {
	// N is the foreign-key domain size (n_R).
	N int
	// NeedleProb is the probability mass on the needle value (index 0).
	NeedleProb float64
}

// Sample draws an FK index: 0 is the needle, 1..N-1 the thread.
func (d NeedleAndThread) Sample(r *RNG) int {
	if r.Float64() < d.NeedleProb {
		return 0
	}
	if d.N <= 1 {
		return 0
	}
	return 1 + r.IntN(d.N-1)
}

// Probs returns the full probability vector of the distribution.
func (d NeedleAndThread) Probs() []float64 {
	p := make([]float64, d.N)
	if d.N == 0 {
		return p
	}
	p[0] = d.NeedleProb
	if d.N > 1 {
		rest := (1 - d.NeedleProb) / float64(d.N-1)
		for i := 1; i < d.N; i++ {
			p[i] = rest
		}
	} else {
		p[0] = 1
	}
	return p
}
