package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical words of 64", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams matched on %d of 64 words", same)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(123)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / float64(n)
	if math.Abs(f-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", f)
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := NewRNG(5)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestCategoricalPanicsOnInvalid(t *testing.T) {
	r := NewRNG(1)
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(77)
	if err := quick.Check(func(seed uint64) bool {
		n := int(seed%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(4, 0)
	for i, p := range z.Probs() {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("Zipf(s=0) prob[%d] = %v, want 0.25", i, p)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	z := NewZipf(10, 2)
	probs := z.Probs()
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[i-1] {
			t.Fatalf("Zipf probabilities not decreasing at %d: %v", i, probs)
		}
	}
	if probs[0] < 0.6 {
		t.Fatalf("Zipf(s=2, n=10) head mass = %v, expected dominant head", probs[0])
	}
}

func TestZipfSampleMatchesProbs(t *testing.T) {
	r := NewRNG(31)
	z := NewZipf(6, 1)
	probs := z.Probs()
	counts := make([]int, 6)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i, p := range probs {
		f := float64(counts[i]) / n
		if math.Abs(f-p) > 0.01 {
			t.Fatalf("Zipf empirical[%d]=%v vs theoretical %v", i, f, p)
		}
	}
}

func TestZipfPanicsOnNonpositiveN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func TestNeedleAndThreadProbs(t *testing.T) {
	d := NeedleAndThread{N: 5, NeedleProb: 0.5}
	p := d.Probs()
	if p[0] != 0.5 {
		t.Fatalf("needle prob = %v", p[0])
	}
	for i := 1; i < 5; i++ {
		if math.Abs(p[i]-0.125) > 1e-12 {
			t.Fatalf("thread prob[%d] = %v, want 0.125", i, p[i])
		}
	}
}

func TestNeedleAndThreadSample(t *testing.T) {
	r := NewRNG(41)
	d := NeedleAndThread{N: 8, NeedleProb: 0.4}
	counts := make([]int, 8)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	if f := float64(counts[0]) / n; math.Abs(f-0.4) > 0.02 {
		t.Fatalf("needle frequency = %v, want ≈0.4", f)
	}
	for i := 1; i < 8; i++ {
		if counts[i] == 0 {
			t.Fatalf("thread value %d never sampled", i)
		}
	}
}

func TestNeedleAndThreadSingleton(t *testing.T) {
	r := NewRNG(1)
	d := NeedleAndThread{N: 1, NeedleProb: 0.2}
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 0 {
			t.Fatal("singleton distribution must always sample 0")
		}
	}
	if p := d.Probs(); p[0] != 1 {
		t.Fatalf("singleton prob = %v, want 1", p[0])
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); !approxEq(r, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); !approxEq(r, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("zero-variance correlation = %v, want 0", r)
	}
	if r := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Fatalf("single-point correlation = %v, want 0", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rr := NewRNG(seed)
		n := 2 + rr.IntN(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rr.Float64()
			y[i] = rr.Float64()
		}
		r := Pearson(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approxEq(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !approxEq(v, 4, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if s := StdDev(xs); !approxEq(s, 2, 1e-12) {
		t.Fatalf("stddev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate mean/variance should be 0")
	}
}

func TestRMSEAndZeroOne(t *testing.T) {
	pred := []int32{1, 2, 3, 4}
	truth := []int32{1, 2, 2, 2}
	if e := ZeroOneError(pred, truth); !approxEq(e, 0.5, 1e-12) {
		t.Fatalf("zero-one = %v", e)
	}
	// RMSE: sqrt((0+0+1+4)/4) = sqrt(1.25).
	if e := RMSE(pred, truth); !approxEq(e, math.Sqrt(1.25), 1e-12) {
		t.Fatalf("rmse = %v", e)
	}
	if RMSE(nil, nil) != 0 || ZeroOneError(nil, nil) != 0 {
		t.Fatal("empty error metrics should be 0")
	}
}
