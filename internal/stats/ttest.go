package stats

import "math"

// This file adds the small-sample significance machinery behind
// cmd/benchdiff: Welch's unequal-variance t-test with p-values from the
// Student-t CDF, itself computed via the regularized incomplete beta
// function. Benchmark samples are few (go test -count N with small N) and
// heteroscedastic across commits, which is exactly Welch's regime.

// SampleVariance returns the unbiased (n-1) sample variance of the series,
// or 0 for a series shorter than two points. Variance (population, /n)
// remains the estimator for the bias–variance decomposition; hypothesis
// tests need this one.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// WelchTTest performs Welch's two-sample, two-sided t-test on x and y.
// It returns the t statistic, the Welch–Satterthwaite degrees of freedom,
// and the two-sided p-value for the null hypothesis that the means are
// equal.
//
// Degenerate inputs: when either sample has fewer than two points, no test
// is possible and all three returns are NaN. When both samples have zero
// variance, p is 1 for equal means and 0 otherwise (t is ±Inf and df NaN
// in the unequal case).
func WelchTTest(x, y []float64) (t, df, p float64) {
	n1, n2 := float64(len(x)), float64(len(y))
	if n1 < 2 || n2 < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	m1, m2 := Mean(x), Mean(y)
	v1, v2 := SampleVariance(x), SampleVariance(y)
	se2 := v1/n1 + v2/n2
	if se2 == 0 {
		if m1 == m2 {
			return 0, math.NaN(), 1
		}
		return math.Inf(sign(m1 - m2)), math.NaN(), 0
	}
	t = (m1 - m2) / math.Sqrt(se2)
	df = se2 * se2 / (v1*v1/(n1*n1*(n1-1)) + v2*v2/(n2*n2*(n2-1)))
	// Two-sided: P(|T| > |t|) = I_{df/(df+t²)}(df/2, 1/2).
	p = RegIncBeta(df/2, 0.5, df/(df+t*t))
	return t, df, p
}

// sign returns +1 for positive d, -1 otherwise (math.Inf direction).
func sign(d float64) int {
	if d > 0 {
		return 1
	}
	return -1
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1], evaluated with the standard continued
// fraction (Lentz's method), using the symmetry relation to keep the
// fraction in its fast-converging region.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)) in log space for stability.
	lbeta, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) + lbeta - lga - lgb)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log(1-x)+a*math.Log(x)+lbeta-lga-lgb)*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction of the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
