package stats

import (
	"math"
	"testing"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestSampleVariance(t *testing.T) {
	// Population variance of {2,4,4,4,5,5,7,9} is 4; sample variance 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, "SampleVariance", SampleVariance(xs), 32.0/7, 1e-12)
	if SampleVariance([]float64{1}) != 0 || SampleVariance(nil) != 0 {
		t.Error("short series should have zero sample variance")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		almost(t, "I_x(1,1)", RegIncBeta(1, 1, x), x, 1e-12)
	}
	// I_x(2,2) = x²(3-2x).
	for _, x := range []float64{0.25, 0.5, 0.75} {
		almost(t, "I_x(2,2)", RegIncBeta(2, 2, x), x*x*(3-2*x), 1e-12)
	}
	// Symmetry at the midpoint of a symmetric beta.
	almost(t, "I_0.5(0.5,0.5)", RegIncBeta(0.5, 0.5, 0.5), 0.5, 1e-12)
	// Complement identity I_x(a,b) = 1 - I_{1-x}(b,a).
	almost(t, "complement", RegIncBeta(3, 7, 0.3), 1-RegIncBeta(7, 3, 0.7), 1e-12)
	// Boundaries.
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestWelchTTestReference(t *testing.T) {
	// Equal sizes and variances: t = -1, df = 8, two-sided p ≈ 0.34659
	// (reference values from scipy.stats.ttest_ind(equal_var=False)).
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 3, 4, 5, 6}
	tt, df, p := WelchTTest(x, y)
	almost(t, "t", tt, -1, 1e-12)
	almost(t, "df", df, 8, 1e-9)
	almost(t, "p", p, 0.3465935, 1e-6)

	// Unequal sizes and variances: t=-2.22551, df≈24.5246, p≈0.035485
	// (computed independently from the Welch formulas).
	x = []float64{19.8, 20.4, 19.6, 17.8, 18.5, 18.9, 18.3, 18.9, 19.5, 22.0}
	y = []float64{28.2, 26.6, 20.1, 23.3, 25.2, 22.1, 17.7, 27.6, 20.6, 13.7, 23.2, 17.5, 20.6, 18.0, 23.9, 21.6, 24.3, 20.4, 23.9, 13.3}
	tt, df, p = WelchTTest(x, y)
	almost(t, "t(unequal)", tt, -2.2255120, 1e-6)
	almost(t, "df(unequal)", df, 24.5246349, 1e-6)
	almost(t, "p(unequal)", p, 0.0354845, 1e-6)
}

func TestWelchTTestDegenerate(t *testing.T) {
	// Identical samples: no evidence against the null.
	_, _, p := WelchTTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if p != 1 {
		t.Errorf("identical zero-variance samples: p = %g, want 1", p)
	}
	// Zero variance, different means: certain difference.
	_, _, p = WelchTTest([]float64{5, 5, 5}, []float64{6, 6, 6})
	if p != 0 {
		t.Errorf("distinct zero-variance samples: p = %g, want 0", p)
	}
	// Too few samples: NaN (caller falls back to threshold-only gating).
	if _, _, p = WelchTTest([]float64{1}, []float64{2, 3}); !math.IsNaN(p) {
		t.Errorf("n<2: p = %g, want NaN", p)
	}
	// Identical means with variance: p = 1 via t = 0.
	_, _, p = WelchTTest([]float64{1, 3}, []float64{0, 4})
	almost(t, "equal means", p, 1, 1e-12)
}
