package synth

import (
	"math"
	"testing"

	"hamlet/internal/core"
	"hamlet/internal/stats"
)

// TestAllMimicsPreserveTupleRatiosAcrossScales: the decision rules consume
// tuple ratios, so scaling must preserve them for every attribute table of
// every mimic (within rounding of small tables).
func TestAllMimicsPreserveTupleRatiosAcrossScales(t *testing.T) {
	for _, spec := range Mimics() {
		ref := make(map[string]float64)
		for _, a := range spec.Attrs {
			ref[a.Name] = float64(spec.Rows/2) / float64(a.Rows)
		}
		for _, scale := range []float64{0.05, 0.2} {
			d, err := spec.Generate(scale, 1)
			if err != nil {
				t.Fatal(err)
			}
			nTrain := d.NumRows() / 2
			for _, at := range d.Attrs {
				if at.Table.NumRows() <= 8 {
					// Tables clamped by the 8-row generation floor
					// cannot preserve TR exactly; their true and scaled
					// TRs are both far beyond τ, so verdicts hold.
					continue
				}
				tr, err := core.TupleRatio(nTrain, at.Table.NumRows())
				if err != nil {
					t.Fatal(err)
				}
				want := ref[at.Table.Name]
				// Small tables round; allow 35% relative slack there,
				// 10% elsewhere.
				slack := 0.10
				if at.Table.NumRows() < 50 {
					slack = 0.35
				}
				if math.Abs(tr-want) > slack*want {
					t.Errorf("%s/%s at scale %v: TR = %.1f, want ≈%.1f",
						spec.Name, at.Table.Name, scale, tr, want)
				}
			}
		}
	}
}

// TestMimicVerdictsStableAcrossSeeds: the advisor's avoid/keep split is a
// property of the schema statistics, so it must not depend on the
// generation seed.
func TestMimicVerdictsStableAcrossSeeds(t *testing.T) {
	adv := core.NewAdvisor()
	for _, spec := range Mimics() {
		var ref []bool
		for seed := uint64(1); seed <= 3; seed++ {
			d, err := spec.Generate(0.02, seed)
			if err != nil {
				t.Fatal(err)
			}
			decs, err := adv.Decide(d)
			if err != nil {
				t.Fatal(err)
			}
			cur := make([]bool, len(decs))
			for i, dec := range decs {
				cur[i] = dec.Considered && dec.Avoid
			}
			if ref == nil {
				ref = cur
				continue
			}
			for i := range cur {
				if cur[i] != ref[i] {
					t.Errorf("%s: verdict for table %d flipped across seeds", spec.Name, i)
				}
			}
		}
	}
}

// TestWorldLabelMarginalBalanced: scenario OneXr draws X_r roughly uniformly
// (R cells are fair coins), so P(Y) should not be degenerate; the entropy
// guard must not trip on unskewed simulation data.
func TestWorldLabelMarginalBalanced(t *testing.T) {
	w, err := NewWorld(SimConfig{Scenario: OneXr, DS: 2, DR: 4, NR: 40, P: 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := w.Sample(10000, stats.NewRNG(5))
	hy := stats.Entropy(m.Y, 2)
	if hy < core.EntropyGuardBits {
		t.Fatalf("H(Y) = %v on unskewed simulation data; guard would misfire", hy)
	}
}

// TestMimicFDHoldsForAllAttributeTables: every mimic's materialized design
// must satisfy FK → F for every foreign feature (the structural fact all
// the theory rests on).
func TestMimicFDHoldsForAllAttributeTables(t *testing.T) {
	for _, spec := range Mimics() {
		d, err := spec.Generate(0.01, 9)
		if err != nil {
			t.Fatal(err)
		}
		m, err := d.Materialize(d.JoinAllPlan())
		if err != nil {
			t.Fatal(err)
		}
		for _, at := range d.Attrs {
			fkIdx := m.FeatureIndex(at.FK)
			if fkIdx < 0 {
				if !at.ClosedDomain {
					continue // open-domain FKs are not features
				}
				t.Fatalf("%s: FK %s missing from design", spec.Name, at.FK)
			}
			fk := m.Features[fkIdx]
			for _, col := range at.Table.ColumnNames() {
				ci := m.FeatureIndex(col)
				if ci < 0 {
					t.Fatalf("%s: foreign feature %s missing", spec.Name, col)
				}
				seen := make(map[int32]int32)
				for row := 0; row < m.NumRows(); row++ {
					k := fk.Data[row]
					v := m.Features[ci].Data[row]
					if prev, ok := seen[k]; ok && prev != v {
						t.Fatalf("%s: FD %s→%s violated", spec.Name, at.FK, col)
					} else if !ok {
						seen[k] = v
					}
				}
			}
		}
	}
}
