package synth

import (
	"fmt"

	"hamlet/internal/dataset"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

// The paper evaluates on seven real normalized datasets (Figure 6) that are
// not redistributable here. This file generates schema-faithful mimics: each
// mimic reproduces the dataset's published statistics — number of classes,
// n_S, d_S, k, k', (n_Ri, d_Ri), and which FKs have closed domains — and
// plants a ground-truth concept consistent with the paper's observed
// outcome on that dataset (which joins were safe to avoid, and where
// avoidance blows up the error). Sizes scale linearly so the tuple ratios,
// which drive every decision rule, are preserved exactly at any scale.

// MimicFeature describes one generated feature column.
type MimicFeature struct {
	// Name is the column name (taken from the paper's schema listing).
	Name string
	// Card is the domain size after the paper's equal-width binning.
	Card int
}

// MimicAttr describes one attribute table of a mimic and its planted signal.
type MimicAttr struct {
	// Name is the table name, FK the referencing entity-table column.
	Name, FK string
	// Rows is n_Ri at scale 1 (the paper's row count).
	Rows int
	// Features lists the table's d_Ri feature columns.
	Features []MimicFeature
	// Closed records whether the FK domain is closed (Figure 6's k').
	Closed bool
	// FKSignal is the mixture weight of the per-RID latent label: a
	// concept at the granularity of the foreign key itself, which the FK
	// represents losslessly (joins safe to avoid carry their signal here).
	FKSignal float64
	// FeatureSignal is the mixture weight of the table's first feature
	// column: a concept carried by a small-domain foreign feature, which
	// the FK can only represent with |D_FK|-sized variance (unsafe joins
	// carry their signal here).
	FeatureSignal float64
}

// MimicSpec describes one dataset mimic.
type MimicSpec struct {
	// Name is the dataset name as in Figure 6.
	Name string
	// Classes is #Y.
	Classes int
	// Rows is n_S at scale 1.
	Rows int
	// Home lists the d_S entity-table features.
	Home []MimicFeature
	// HomeSignal is the mixture weight per home feature (0 = pure noise).
	HomeSignal []float64
	// Attrs lists the attribute tables.
	Attrs []MimicAttr
	// Noise is the probability that a label is replaced by a uniformly
	// random class, bounding achievable accuracy away from zero error.
	Noise float64
}

// Stats reports the Figure 6 statistics of the spec at the given scale.
func (s MimicSpec) Stats(scale float64) (nS int, dS, k, kPrime int, attr []string) {
	nS = scaled(s.Rows, scale)
	dS = len(s.Home)
	k = len(s.Attrs)
	for _, a := range s.Attrs {
		if a.Closed {
			kPrime++
		}
		attr = append(attr, fmt.Sprintf("(%d, %d)", scaled(a.Rows, scale), len(a.Features)))
	}
	return nS, dS, k, kPrime, attr
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 8 {
		v = 8
	}
	return v
}

// feat is shorthand for constructing feature lists.
func feat(name string, card int) MimicFeature { return MimicFeature{Name: name, Card: card} }

// Mimics returns the seven specs in the paper's Figure 6 order. Planted
// concepts follow DESIGN.md §7:
//
//   - Walmart, MovieLens1M: FK-level concepts on every attribute table →
//     both joins safe to avoid (high TRs).
//   - Expedia: FK-level concept on Hotels plus home-feature signal;
//     Searches is open-domain (k' = 1).
//   - Flights: FK-level concept on Airlines; the two airport tables are
//     noise (the paper found they could have been avoided — its rules
//     conservatively keep them).
//   - Yelp: strong small-domain foreign-feature concepts on both tables
//     with very low TRs → avoidance blows up the error.
//   - LastFM: concept on the user side (low TR, kept); Artists noise.
//   - BookCrossing: foreign-feature concept on Users (low TR, truly
//     unsafe); Books noise (a missed opportunity, as in Figure 8(A)).
func Mimics() []MimicSpec {
	return []MimicSpec{
		{
			Name: "Walmart", Classes: 7, Rows: 421570,
			Home:       []MimicFeature{feat("Dept", 81)},
			HomeSignal: []float64{0.8},
			Noise:      0.35,
			Attrs: []MimicAttr{
				{Name: "Indicators", FK: "IndicatorID", Rows: 2340, Closed: true, FKSignal: 1.0,
					Features: []MimicFeature{feat("TempAvg", 10), feat("TempStdev", 10), feat("CPIAvg", 10), feat("CPIStdev", 10), feat("FuelPriceAvg", 10), feat("FuelPriceStdev", 10), feat("UnempRateAvg", 10), feat("UnempRateStdev", 10), feat("IsHoliday", 2)}},
				{Name: "Stores", FK: "StoreID", Rows: 45, Closed: true, FKSignal: 0.9,
					Features: []MimicFeature{feat("Type", 3), feat("Size", 10)}},
			},
		},
		{
			Name: "Expedia", Classes: 2, Rows: 942142,
			Home:       []MimicFeature{feat("Score1", 10), feat("Score2", 10), feat("LogHistoricalPrice", 10), feat("PriceUSD", 10), feat("PromoFlag", 2), feat("OrigDestDistance", 10)},
			HomeSignal: []float64{0, 0.7, 0, 0, 0.3, 0},
			Noise:      0.18,
			Attrs: []MimicAttr{
				{Name: "Hotels", FK: "HotelID", Rows: 11939, Closed: true, FKSignal: 0.9,
					Features: []MimicFeature{feat("Country", 50), feat("Stars", 5), feat("ReviewScore", 10), feat("BookingUSDAvg", 10), feat("BookingUSDStdev", 10), feat("BookingCount", 10), feat("BrandBool", 2), feat("ClickCount", 10)}},
				{Name: "Searches", FK: "SearchID", Rows: 37021, Closed: false, FKSignal: 0,
					Features: []MimicFeature{feat("Year", 2), feat("Month", 12), feat("WeekOfYear", 52), feat("TimeOfDay", 4), feat("VisitorCountry", 50), feat("SearchDest", 100), feat("LengthOfStay", 10), feat("ChildrenCount", 5), feat("AdultsCount", 5), feat("RoomCount", 4), feat("SiteID", 20), feat("BookingWindow", 10), feat("SatNightBool", 2), feat("RandomBool", 2)}},
			},
		},
		{
			Name: "Flights", Classes: 2, Rows: 66548,
			Home:       mkEquipment(20),
			HomeSignal: mkEquipmentSignal(20),
			Noise:      0.12,
			Attrs: []MimicAttr{
				{Name: "Airlines", FK: "AirlineID", Rows: 540, Closed: true, FKSignal: 1.0,
					Features: []MimicFeature{feat("AirCountry", 50), feat("Active", 2), feat("NameWords", 5), feat("NameHasAir", 2), feat("NameHasAirlines", 2)}},
				{Name: "SrcAirports", FK: "SrcAirportID", Rows: 3182, Closed: true, FKSignal: 0,
					Features: []MimicFeature{feat("SrcCity", 100), feat("SrcCountry", 50), feat("SrcDST", 5), feat("SrcTimeZone", 25), feat("SrcLongitude", 10), feat("SrcLatitude", 10)}},
				{Name: "DestAirports", FK: "DestAirportID", Rows: 3182, Closed: true, FKSignal: 0,
					Features: []MimicFeature{feat("DestCity", 100), feat("DestCountry", 50), feat("DestTimeZone", 25), feat("DestDST", 5), feat("DestLongitude", 10), feat("DestLatitude", 10)}},
			},
		},
		{
			Name: "Yelp", Classes: 5, Rows: 215879,
			Home:  nil,
			Noise: 0.3,
			Attrs: []MimicAttr{
				{Name: "Businesses", FK: "BusinessID", Rows: 11537, Closed: true, FeatureSignal: 1.0,
					Features: append(append([]MimicFeature{feat("BusinessStars", 9), feat("BusinessReviewCount", 10), feat("Latitude", 10), feat("Longitude", 10), feat("City", 100), feat("State", 30)}, mkSeries("Checkins", 10, 10, "Category", 15, 2)...), feat("IsOpen", 2))},
				{Name: "Users", FK: "UserID", Rows: 43873, Closed: true, FeatureSignal: 0.8,
					Features: []MimicFeature{feat("UserStars", 9), feat("Gender", 2), feat("UserReviewCount", 10), feat("VotesUseful", 10), feat("VotesFunny", 10), feat("VotesCool", 10)}},
			},
		},
		{
			Name: "MovieLens1M", Classes: 5, Rows: 1000209,
			Home:  nil,
			Noise: 0.3,
			Attrs: []MimicAttr{
				{Name: "Movies", FK: "MovieID", Rows: 3706, Closed: true, FKSignal: 1.0,
					Features: append([]MimicFeature{feat("NameWords", 8), feat("NameHasParentheses", 2), feat("Year", 10)}, mkSeries("Genre", 18, 2, "", 0, 0)...)},
				{Name: "Users", FK: "UserID", Rows: 6040, Closed: true, FKSignal: 0.9,
					Features: []MimicFeature{feat("Gender", 2), feat("Age", 7), feat("Zipcode", 100), feat("Occupation", 21)}},
			},
		},
		{
			Name: "LastFM", Classes: 5, Rows: 343747,
			Home:  nil,
			Noise: 0.3,
			Attrs: []MimicAttr{
				{Name: "Artists", FK: "ArtistID", Rows: 4999, Closed: true, FKSignal: 0,
					Features: append([]MimicFeature{feat("Listens", 10), feat("Scrobbles", 10)}, mkSeries("Genre", 5, 2, "", 0, 0)...)},
				{Name: "Users", FK: "UserID", Rows: 50000, Closed: true, FKSignal: 0.9,
					Features: []MimicFeature{feat("Gender", 2), feat("Age", 10), feat("Country", 50), feat("JoinYear", 10)}},
			},
		},
		{
			Name: "BookCrossing", Classes: 5, Rows: 253120,
			Home:  nil,
			Noise: 0.3,
			Attrs: []MimicAttr{
				{Name: "Users", FK: "UserID", Rows: 49972, Closed: true, FeatureSignal: 1.0,
					Features: []MimicFeature{feat("Age", 10), feat("Country", 50), feat("AgeBand", 5), feat("HasCountry", 2)}},
				{Name: "Books", FK: "BookID", Rows: 27876, Closed: true, FKSignal: 0,
					Features: []MimicFeature{feat("Year", 10), feat("Publisher", 100)}},
			},
		},
	}
}

// mkEquipment builds the Flights entity schema: Equipment1..EquipmentN.
func mkEquipment(n int) []MimicFeature {
	out := make([]MimicFeature, n)
	for i := range out {
		out[i] = feat(fmt.Sprintf("Equipment%d", i+1), 4)
	}
	return out
}

// mkEquipmentSignal gives the first two equipment slots a mild signal.
func mkEquipmentSignal(n int) []float64 {
	out := make([]float64, n)
	out[0], out[1] = 0.4, 0.2
	return out
}

// mkSeries builds repeated columns like WeekdayCheckins1..5 / Category1..15.
func mkSeries(nameA string, countA, cardA int, nameB string, countB, cardB int) []MimicFeature {
	var out []MimicFeature
	for i := 1; i <= countA; i++ {
		out = append(out, feat(fmt.Sprintf("%s%d", nameA, i), cardA))
	}
	for i := 1; i <= countB; i++ {
		out = append(out, feat(fmt.Sprintf("%s%d", nameB, i), cardB))
	}
	return out
}

// MimicByName returns the spec with the given name.
func MimicByName(name string) (MimicSpec, error) {
	for _, s := range Mimics() {
		if s.Name == name {
			return s, nil
		}
	}
	return MimicSpec{}, fmt.Errorf("synth: no mimic named %q", name)
}

// MinEntityRows is the smallest entity table Generate will produce: below
// this, the 25% holdout validation split is too small for greedy wrapper
// search to make stable decisions. The effective scale is clamped upward to
// reach it — uniformly across the entity and attribute tables, so the tuple
// ratios that drive the decision rules are preserved exactly.
const MinEntityRows = 4000

// Generate materializes the mimic at the given scale: attribute tables of
// scaled(n_Ri) rows with uniformly sampled features, an entity table of
// scaled(n_S) rows, and labels drawn from the planted concept mixture. The
// same seed always yields the same dataset.
func (s MimicSpec) Generate(scale float64, seed uint64) (*dataset.Dataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("synth: mimic scale must lie in (0,1], got %v", scale)
	}
	if minScale := float64(MinEntityRows) / float64(s.Rows); scale < minScale && minScale <= 1 {
		scale = minScale
	}
	if len(s.HomeSignal) != 0 && len(s.HomeSignal) != len(s.Home) {
		return nil, fmt.Errorf("synth: mimic %q has %d home signals for %d home features", s.Name, len(s.HomeSignal), len(s.Home))
	}
	rng := stats.NewRNG(seed)
	nS := scaled(s.Rows, scale)

	type attrState struct {
		table     *relational.Table
		rows      int
		latent    []int32 // per-RID latent label (FKSignal source)
		featLabel []int32 // per-RID label derived from feature 0 (FeatureSignal source)
	}
	states := make([]attrState, len(s.Attrs))
	for ai, a := range s.Attrs {
		rows := scaled(a.Rows, scale)
		tab := relational.NewTable(a.Name)
		var feat0 []int32
		for fi, f := range a.Features {
			data := make([]int32, rows)
			for i := range data {
				data[i] = int32(rng.IntN(f.Card))
			}
			if err := tab.AddColumn(&relational.Column{Name: f.Name, Card: f.Card, Data: data}); err != nil {
				return nil, err
			}
			if fi == 0 {
				feat0 = data
			}
		}
		st := attrState{table: tab, rows: rows}
		st.latent = make([]int32, rows)
		st.featLabel = make([]int32, rows)
		for rid := 0; rid < rows; rid++ {
			st.latent[rid] = int32(rng.IntN(s.Classes))
			if len(feat0) > 0 {
				st.featLabel[rid] = feat0[rid] % int32(s.Classes)
			}
		}
		states[ai] = st
	}

	// Entity table: home features, FKs, and labels from the signal mixture.
	homeData := make([][]int32, len(s.Home))
	for j, f := range s.Home {
		homeData[j] = make([]int32, nS)
		for i := range homeData[j] {
			homeData[j][i] = int32(rng.IntN(f.Card))
		}
	}
	fkData := make([][]int32, len(s.Attrs))
	for ai := range s.Attrs {
		fkData[ai] = make([]int32, nS)
		for i := range fkData[ai] {
			fkData[ai][i] = int32(rng.IntN(states[ai].rows))
		}
	}
	// Build the signal mixture: (weight, score) pairs. The label is the
	// rounded weighted average of the source scores plus ordinal jitter —
	// an ordinal concept (like the star ratings of Yelp/MovieLens/
	// BookCrossing) under which every signal source reduces RMSE, matching
	// the paper's multi-class targets. Binary targets degenerate to a
	// weighted majority vote with label flips as noise.
	type source struct {
		weight float64
		score  func(row int) int32
	}
	var sources []source
	for j := range s.Home {
		if len(s.HomeSignal) == 0 || s.HomeSignal[j] == 0 {
			continue
		}
		j := j
		sources = append(sources, source{s.HomeSignal[j], func(i int) int32 {
			return homeData[j][i] % int32(s.Classes)
		}})
	}
	for ai, a := range s.Attrs {
		ai := ai
		if a.FKSignal > 0 {
			sources = append(sources, source{a.FKSignal, func(i int) int32 {
				return states[ai].latent[fkData[ai][i]]
			}})
		}
		if a.FeatureSignal > 0 {
			sources = append(sources, source{a.FeatureSignal, func(i int) int32 {
				return states[ai].featLabel[fkData[ai][i]]
			}})
		}
	}
	totalWeight := 0.0
	for _, src := range sources {
		totalWeight += src.weight
	}
	y := make([]int32, nS)
	for i := 0; i < nS; i++ {
		if len(sources) == 0 {
			y[i] = int32(rng.IntN(s.Classes))
			continue
		}
		base := 0.0
		for _, src := range sources {
			base += src.weight * float64(src.score(i))
		}
		base /= totalWeight
		var yv int
		if s.Classes == 2 {
			// Probabilistic vote: every signal source shifts P(Y=1)
			// monotonically, so greedy search never hits the plateau a
			// hard-threshold majority would create.
			p1 := s.Noise*0.5 + (1-s.Noise)*base
			if rng.Bernoulli(p1) {
				yv = 1
			}
		} else {
			yv = int(base + 0.5)
			if rng.Bernoulli(s.Noise) {
				if rng.Bernoulli(0.5) {
					yv++
				} else {
					yv--
				}
			}
			if yv < 0 {
				yv = 0
			}
			if yv >= s.Classes {
				yv = s.Classes - 1
			}
		}
		y[i] = int32(yv)
	}

	entity := relational.NewTable(s.Name + "_S")
	if err := entity.AddColumn(&relational.Column{Name: "Y", Card: s.Classes, Data: y}); err != nil {
		return nil, err
	}
	var home []string
	for j, f := range s.Home {
		if err := entity.AddColumn(&relational.Column{Name: f.Name, Card: f.Card, Data: homeData[j]}); err != nil {
			return nil, err
		}
		home = append(home, f.Name)
	}
	var attrs []dataset.AttributeTable
	for ai, a := range s.Attrs {
		if err := entity.AddColumn(&relational.Column{Name: a.FK, Card: states[ai].rows, Data: fkData[ai]}); err != nil {
			return nil, err
		}
		attrs = append(attrs, dataset.AttributeTable{Table: states[ai].table, FK: a.FK, ClosedDomain: a.Closed})
	}
	d := &dataset.Dataset{Name: s.Name, Entity: entity, Target: "Y", HomeFeatures: home, Attrs: attrs}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
