package synth

import (
	"testing"

	"hamlet/internal/core"
	"hamlet/internal/stats"
)

// figure6 captures the paper's Figure 6 statistics for verification.
var figure6 = map[string]struct {
	classes, nS, dS, k, kPrime int
	attrRows                   []int
	attrFeats                  []int
}{
	"Walmart":      {7, 421570, 1, 2, 2, []int{2340, 45}, []int{9, 2}},
	"Expedia":      {2, 942142, 6, 2, 1, []int{11939, 37021}, []int{8, 14}},
	"Flights":      {2, 66548, 20, 3, 3, []int{540, 3182, 3182}, []int{5, 6, 6}},
	"Yelp":         {5, 215879, 0, 2, 2, []int{11537, 43873}, []int{32, 6}},
	"MovieLens1M":  {5, 1000209, 0, 2, 2, []int{3706, 6040}, []int{21, 4}},
	"LastFM":       {5, 343747, 0, 2, 2, []int{4999, 50000}, []int{7, 4}},
	"BookCrossing": {5, 253120, 0, 2, 2, []int{49972, 27876}, []int{4, 2}},
}

func TestMimicSpecsMatchFigure6(t *testing.T) {
	specs := Mimics()
	if len(specs) != 7 {
		t.Fatalf("have %d mimics, want 7", len(specs))
	}
	for _, s := range specs {
		want, ok := figure6[s.Name]
		if !ok {
			t.Fatalf("unexpected mimic %q", s.Name)
		}
		if s.Classes != want.classes {
			t.Errorf("%s: classes = %d, want %d", s.Name, s.Classes, want.classes)
		}
		if s.Rows != want.nS {
			t.Errorf("%s: n_S = %d, want %d", s.Name, s.Rows, want.nS)
		}
		if len(s.Home) != want.dS {
			t.Errorf("%s: d_S = %d, want %d", s.Name, len(s.Home), want.dS)
		}
		if len(s.Attrs) != want.k {
			t.Errorf("%s: k = %d, want %d", s.Name, len(s.Attrs), want.k)
		}
		kPrime := 0
		for i, a := range s.Attrs {
			if a.Closed {
				kPrime++
			}
			if a.Rows != want.attrRows[i] {
				t.Errorf("%s/%s: n_R = %d, want %d", s.Name, a.Name, a.Rows, want.attrRows[i])
			}
			if len(a.Features) != want.attrFeats[i] {
				t.Errorf("%s/%s: d_R = %d, want %d", s.Name, a.Name, len(a.Features), want.attrFeats[i])
			}
		}
		if kPrime != want.kPrime {
			t.Errorf("%s: k' = %d, want %d", s.Name, kPrime, want.kPrime)
		}
	}
}

func TestMimicGenerateValidates(t *testing.T) {
	for _, s := range Mimics() {
		d, err := s.Generate(0.01, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: generated dataset invalid: %v", s.Name, err)
		}
		if d.NumClasses() != s.Classes {
			t.Fatalf("%s: classes = %d", s.Name, d.NumClasses())
		}
	}
}

func TestMimicScalePreservesTupleRatios(t *testing.T) {
	// TR must be (approximately) scale-invariant: both n_S and n_R scale.
	s, err := MimicByName("Walmart")
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []float64{0.02, 0.1} {
		d, err := s.Generate(scale, 2)
		if err != nil {
			t.Fatal(err)
		}
		nTrain := d.NumRows() / 2
		tr, err := core.TupleRatio(nTrain, d.Attrs[0].Table.NumRows())
		if err != nil {
			t.Fatal(err)
		}
		// Paper-scale TR for Walmart/Indicators is ≈ 90.
		if tr < 70 || tr > 115 {
			t.Fatalf("scale %v: TR = %v, want ≈90", scale, tr)
		}
	}
}

// TestMimicAdvisorDecisions verifies the end-to-end avoid/keep split of §5
// on the generated mimics: 7 avoided + 3 kept among closed-domain FKs, with
// Expedia's Searches never considered (open domain).
func TestMimicAdvisorDecisions(t *testing.T) {
	wantAvoid := map[string]bool{
		"Walmart/Indicators":   true,
		"Walmart/Stores":       true,
		"Expedia/Hotels":       true,
		"Flights/Airlines":     true,
		"Flights/SrcAirports":  false,
		"Flights/DestAirports": false,
		"Yelp/Businesses":      false,
		"Yelp/Users":           false,
		"MovieLens1M/Movies":   true,
		"MovieLens1M/Users":    true,
		"LastFM/Artists":       true,
		"LastFM/Users":         false,
		"BookCrossing/Users":   false,
		"BookCrossing/Books":   false,
	}
	adv := core.NewAdvisor()
	for _, s := range Mimics() {
		d, err := s.Generate(0.02, 3)
		if err != nil {
			t.Fatal(err)
		}
		decs, err := adv.Decide(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, dec := range decs {
			key := s.Name + "/" + dec.Attr
			if dec.Attr == "Searches" {
				if dec.Considered {
					t.Errorf("%s: open-domain FK considered", key)
				}
				continue
			}
			want, ok := wantAvoid[key]
			if !ok {
				t.Fatalf("unexpected decision key %s", key)
			}
			if dec.Avoid != want {
				t.Errorf("%s: avoid=%v (TR=%.1f), paper says %v", key, dec.Avoid, dec.TR, want)
			}
		}
	}
}

func TestMimicDeterminism(t *testing.T) {
	s, _ := MimicByName("Flights")
	a, err := s.Generate(0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	ya, yb := a.Entity.Column("Y").Data, b.Entity.Column("Y").Data
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("same-seed mimics differ")
		}
	}
}

func TestMimicLabelsAreLearnable(t *testing.T) {
	// The planted Walmart concept must make the FK features informative:
	// I(IndicatorID; Y) must clearly exceed the MI of a random column.
	s, _ := MimicByName("Walmart")
	d, err := s.Generate(0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	y := d.Entity.Column("Y")
	fk := d.Entity.Column("IndicatorID")
	mi := stats.MutualInformation(fk.Data, fk.Card, y.Data, y.Card)
	if mi < 0.05 {
		t.Fatalf("planted FK signal too weak: I(FK;Y) = %v", mi)
	}
}

func TestMimicErrors(t *testing.T) {
	s, _ := MimicByName("Walmart")
	if _, err := s.Generate(0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := s.Generate(1.5, 1); err == nil {
		t.Fatal("scale > 1 accepted")
	}
	if _, err := MimicByName("Nope"); err == nil {
		t.Fatal("unknown mimic accepted")
	}
	bad := s
	bad.HomeSignal = []float64{0.1, 0.2}
	if _, err := bad.Generate(0.1, 1); err == nil {
		t.Fatal("mismatched home signal accepted")
	}
}

func TestMimicStats(t *testing.T) {
	s, _ := MimicByName("Expedia")
	nS, dS, k, kPrime, attr := s.Stats(0.1)
	if nS != 94214 || dS != 6 || k != 2 || kPrime != 1 || len(attr) != 2 {
		t.Fatalf("stats = %d %d %d %d %v", nS, dS, k, kPrime, attr)
	}
}
