// Package synth generates the controlled datasets Hamlet-Go's experiments
// run on: the paper's Monte Carlo simulation scenarios (§4.1 and Appendix D)
// and schema-faithful mimics of the seven real datasets of §5 (see mimic.go).
//
// A simulation World is one realization of the paper's generative setting: a
// fixed attribute table R of n_R rows × d_R boolean features, a foreign-key
// distribution (uniform, Zipfian, or needle-and-thread), and a true
// distribution P(Y, X) chosen by scenario. Labeled examples are sampled
// i.i.d.; the world exposes the exact conditional P(Y|x) so the bias–
// variance harness can compute noise and optimal predictions exactly.
package synth

import (
	"fmt"

	"hamlet/internal/dataset"
	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

// Scenario selects which features participate in the true distribution.
type Scenario int

const (
	// OneXr: a lone foreign feature X_r ∈ X_R captures the concept, with
	// P(Y=0|X_r=0) = P(Y=1|X_r=1) = p (Figure 3). This is the worst case
	// for avoiding the join.
	OneXr Scenario = iota
	// AllXsXr: all of X_S and X_R are part of the true distribution
	// (Figure 11): Y flips a coin, X_S features agree with Y with
	// probability 1−p each, and FK is drawn from the RIDs whose X_R
	// majority vote agrees with Y with probability 1−p.
	AllXsXr
	// XsFkOnly: only X_S and FK matter; X_R is pure noise with respect to
	// Y beyond what FK already encodes (the appendix's third scenario).
	// Each RID carries a latent label bit; Y agrees with it with
	// probability 1−p, and X_S features agree with Y with probability 1−p.
	XsFkOnly
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case OneXr:
		return "OneXr"
	case AllXsXr:
		return "AllXsXr"
	case XsFkOnly:
		return "XsFkOnly"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Skew selects the foreign-key marginal distribution (Appendix D).
type Skew int

const (
	// NoSkew draws FK uniformly.
	NoSkew Skew = iota
	// ZipfSkew draws FK from a Zipf distribution (benign skew).
	ZipfSkew
	// NeedleThreadSkew draws FK from the paper's malign needle-and-thread
	// distribution: the needle RID carries mass p and one X_r value; the
	// thread spreads 1−p over the rest, all carrying the other X_r value.
	NeedleThreadSkew
)

// String implements fmt.Stringer.
func (s Skew) String() string {
	switch s {
	case NoSkew:
		return "none"
	case ZipfSkew:
		return "zipf"
	case NeedleThreadSkew:
		return "needle-and-thread"
	}
	return fmt.Sprintf("Skew(%d)", int(s))
}

// SimConfig describes one simulation setting (one point of a parameter
// sweep).
type SimConfig struct {
	// Scenario selects the true distribution.
	Scenario Scenario
	// DS is d_S, the number of boolean entity-table features.
	DS int
	// DR is d_R, the number of boolean attribute-table features.
	DR int
	// NR is n_R = |D_FK|, the attribute-table size.
	NR int
	// P is the scenario noise parameter (the paper uses 0.1).
	P float64
	// Skew selects the FK marginal; NoSkew unless stated.
	Skew Skew
	// ZipfS is the Zipf exponent for ZipfSkew (the paper uses 2).
	ZipfS float64
	// NeedleP is the needle mass for NeedleThreadSkew (the paper uses 0.5).
	NeedleP float64
}

// Validate checks the configuration.
func (c SimConfig) Validate() error {
	if c.DS < 0 || c.DR < 1 {
		return fmt.Errorf("synth: need dS ≥ 0 and dR ≥ 1, got dS=%d dR=%d", c.DS, c.DR)
	}
	if c.NR < 2 {
		return fmt.Errorf("synth: need nR ≥ 2, got %d", c.NR)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("synth: noise p must lie in [0,1], got %v", c.P)
	}
	if c.Skew == NeedleThreadSkew && (c.NeedleP <= 0 || c.NeedleP >= 1) {
		return fmt.Errorf("synth: needle probability must lie in (0,1), got %v", c.NeedleP)
	}
	return nil
}

// World is one realization of a simulation setting: the fixed attribute
// table, the FK marginal, and the concept.
type World struct {
	// Cfg is the generating configuration.
	Cfg SimConfig
	// R[rid][j] is attribute table cell (rid, feature j), 0 or 1.
	R [][]int32
	// majority[rid] is the X_R majority vote used by AllXsXr.
	majority []int32
	// ridLabel[rid] is the latent per-RID label bit used by XsFkOnly.
	ridLabel []int32
	// fkWeights is the FK marginal (unnormalized).
	fkWeights []float64
	// votersByBit[b] lists RIDs whose majority equals b (AllXsXr).
	votersByBit [2][]int
}

// NewWorld realizes a world from the configuration and seed. The attribute
// table, FK marginal and concept are fixed for the world's lifetime; only
// example sampling consumes randomness afterwards.
func NewWorld(cfg SimConfig, seed uint64) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	w := &World{Cfg: cfg}
	w.R = make([][]int32, cfg.NR)
	for rid := range w.R {
		row := make([]int32, cfg.DR)
		for j := range row {
			row[j] = int32(rng.IntN(2))
		}
		w.R[rid] = row
	}
	if cfg.Skew == NeedleThreadSkew {
		// The needle RID (0) carries one X_r value, the thread the other.
		w.R[0][0] = 0
		for rid := 1; rid < cfg.NR; rid++ {
			w.R[rid][0] = 1
		}
	} else {
		// Guarantee X_r is non-constant so the concept exists.
		w.R[0][0] = 0
		w.R[cfg.NR-1][0] = 1
	}
	w.majority = make([]int32, cfg.NR)
	w.ridLabel = make([]int32, cfg.NR)
	for rid, row := range w.R {
		ones := 0
		for _, v := range row {
			ones += int(v)
		}
		if 2*ones > len(row) || (2*ones == len(row) && rid%2 == 1) {
			w.majority[rid] = 1
		}
		w.ridLabel[rid] = int32(rng.IntN(2))
	}
	// Ensure both majority classes are inhabited so AllXsXr sampling is
	// well defined, then index RIDs by their majority bit.
	w.majority[0] = 0
	w.majority[cfg.NR-1] = 1
	for rid := range w.R {
		w.votersByBit[w.majority[rid]] = append(w.votersByBit[w.majority[rid]], rid)
	}
	switch cfg.Skew {
	case NoSkew:
		w.fkWeights = make([]float64, cfg.NR)
		for i := range w.fkWeights {
			w.fkWeights[i] = 1
		}
	case ZipfSkew:
		w.fkWeights = stats.NewZipf(cfg.NR, cfg.ZipfS).Probs()
	case NeedleThreadSkew:
		w.fkWeights = stats.NeedleAndThread{N: cfg.NR, NeedleProb: cfg.NeedleP}.Probs()
	default:
		return nil, fmt.Errorf("synth: unknown skew %d", cfg.Skew)
	}
	return w, nil
}

// FeatureLayout describes the column order of sampled designs:
// X_S features first, then FK, then X_R features.
func (w *World) FeatureLayout() (xs []int, fk int, xr []int) {
	for i := 0; i < w.Cfg.DS; i++ {
		xs = append(xs, i)
	}
	fk = w.Cfg.DS
	for i := 0; i < w.Cfg.DR; i++ {
		xr = append(xr, w.Cfg.DS+1+i)
	}
	return xs, fk, xr
}

// UseAllFeatures returns all feature indices (the paper's UseAll model
// class).
func (w *World) UseAllFeatures() []int {
	xs, fk, xr := w.FeatureLayout()
	out := append(append([]int(nil), xs...), fk)
	return append(out, xr...)
}

// NoJoinFeatures returns X_S ∪ {FK} (the paper's NoJoin model class).
func (w *World) NoJoinFeatures() []int {
	xs, fk, _ := w.FeatureLayout()
	return append(append([]int(nil), xs...), fk)
}

// NoFKFeatures returns X_S ∪ X_R (the paper's NoFK model class).
func (w *World) NoFKFeatures() []int {
	xs, _, xr := w.FeatureLayout()
	return append(append([]int(nil), xs...), xr...)
}

// sampleLabelAndFK draws (Y, FK) from the world's joint distribution.
func (w *World) sampleLabelAndFK(rng *stats.RNG) (y int32, fk int) {
	cfg := w.Cfg
	switch cfg.Scenario {
	case OneXr:
		fk = rng.Categorical(w.fkWeights)
		xr := w.R[fk][0]
		// P(Y=0|X_r=0) = P(Y=1|X_r=1) = p.
		if xr == 0 {
			if rng.Bernoulli(cfg.P) {
				y = 0
			} else {
				y = 1
			}
		} else {
			if rng.Bernoulli(cfg.P) {
				y = 1
			} else {
				y = 0
			}
		}
	case AllXsXr:
		y = int32(rng.IntN(2))
		target := y
		if rng.Bernoulli(cfg.P) {
			target = 1 - target
		}
		// Draw FK from the RIDs whose majority vote equals target,
		// weighted by the FK marginal restricted to that set.
		voters := w.votersByBit[target]
		weights := make([]float64, len(voters))
		for i, rid := range voters {
			weights[i] = w.fkWeights[rid]
		}
		total := 0.0
		for _, wt := range weights {
			total += wt
		}
		if total == 0 {
			fk = voters[rng.IntN(len(voters))]
		} else {
			fk = voters[rng.Categorical(weights)]
		}
	case XsFkOnly:
		fk = rng.Categorical(w.fkWeights)
		y = w.ridLabel[fk]
		if rng.Bernoulli(cfg.P) {
			y = 1 - y
		}
	}
	return y, fk
}

// Sample draws n i.i.d. labeled examples and materializes them as a design
// matrix with the FeatureLayout column order.
func (w *World) Sample(n int, rng *stats.RNG) *dataset.Design {
	cfg := w.Cfg
	m := &dataset.Design{NumClasses: 2, Y: make([]int32, n)}
	xsData := make([][]int32, cfg.DS)
	for j := range xsData {
		xsData[j] = make([]int32, n)
	}
	fkData := make([]int32, n)
	xrData := make([][]int32, cfg.DR)
	for j := range xrData {
		xrData[j] = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		y, fk := w.sampleLabelAndFK(rng)
		m.Y[i] = y
		fkData[i] = int32(fk)
		for j := range xrData {
			xrData[j][i] = w.R[fk][j]
		}
		for j := range xsData {
			switch cfg.Scenario {
			case AllXsXr, XsFkOnly:
				v := y
				if rng.Bernoulli(cfg.P) {
					v = 1 - v
				}
				xsData[j][i] = v
			default:
				xsData[j][i] = int32(rng.IntN(2))
			}
		}
	}
	for j := range xsData {
		m.Features = append(m.Features, dataset.Feature{Name: fmt.Sprintf("XS%d", j), Card: 2, Data: xsData[j], Source: "S"})
	}
	m.Features = append(m.Features, dataset.Feature{Name: "FK", Card: cfg.NR, Data: fkData, Source: "S", IsFK: true})
	for j := range xrData {
		m.Features = append(m.Features, dataset.Feature{Name: fmt.Sprintf("XR%d", j), Card: 2, Data: xrData[j], Source: "R"})
	}
	return m
}

// TrueConditional returns the exact P(Y=1 | x) for row i of a sampled
// design. For OneXr it depends only on X_r; for XsFkOnly only on FK and X_S;
// for AllXsXr on FK (through its majority bit) and X_S. The bias–variance
// harness uses this for exact noise and optimal predictions.
func (w *World) TrueConditional(m *dataset.Design, i int) float64 {
	cfg := w.Cfg
	_, fkIdx, _ := w.FeatureLayout()
	fk := int(m.Features[fkIdx].Data[i])
	switch cfg.Scenario {
	case OneXr:
		if w.R[fk][0] == 0 {
			return 1 - cfg.P // P(Y=1|X_r=0)
		}
		return cfg.P // P(Y=1|X_r=1)
	case AllXsXr:
		// P(Y=1 | majority bit b, x_S) ∝ P(b|Y=1)·Π P(x_Sj|Y=1)·P(Y=1).
		b := w.majority[fk]
		return w.posteriorFromAgreements(m, i, b)
	case XsFkOnly:
		l := w.ridLabel[fk]
		return w.posteriorFromAgreements(m, i, l)
	}
	return 0.5
}

// posteriorFromAgreements computes P(Y=1 | bit, x_S) under the conditional
// independence of the generative model: bit agrees with Y w.p. 1−p, each x_S
// feature agrees with Y w.p. 1−p, and Y is a fair coin.
func (w *World) posteriorFromAgreements(m *dataset.Design, i int, bit int32) float64 {
	cfg := w.Cfg
	xs, _, _ := w.FeatureLayout()
	like := func(y int32) float64 {
		l := 1.0
		if bit == y {
			l *= 1 - cfg.P
		} else {
			l *= cfg.P
		}
		for _, j := range xs {
			if m.Features[j].Data[i] == y {
				l *= 1 - cfg.P
			} else {
				l *= cfg.P
			}
		}
		return l
	}
	l1, l0 := like(1), like(0)
	if l1+l0 == 0 {
		return 0.5
	}
	return l1 / (l1 + l0)
}

// Dataset materializes n sampled examples as a normalized dataset.Dataset
// (entity table with FK + attribute table R), for exercising the advisor and
// join planner on simulation data.
func (w *World) Dataset(name string, n int, rng *stats.RNG) (*dataset.Dataset, error) {
	m := w.Sample(n, rng)
	xs, fkIdx, _ := w.FeatureLayout()
	entity := relational.NewTable("S")
	if err := entity.AddColumn(&relational.Column{Name: "Y", Card: 2, Data: m.Y}); err != nil {
		return nil, err
	}
	var home []string
	for _, j := range xs {
		f := m.Features[j]
		if err := entity.AddColumn(&relational.Column{Name: f.Name, Card: f.Card, Data: f.Data}); err != nil {
			return nil, err
		}
		home = append(home, f.Name)
	}
	fk := m.Features[fkIdx]
	if err := entity.AddColumn(&relational.Column{Name: "FK", Card: fk.Card, Data: fk.Data}); err != nil {
		return nil, err
	}
	attr := relational.NewTable("R")
	for j := 0; j < w.Cfg.DR; j++ {
		col := make([]int32, w.Cfg.NR)
		for rid := range col {
			col[rid] = w.R[rid][j]
		}
		if err := attr.AddColumn(&relational.Column{Name: fmt.Sprintf("XR%d", j), Card: 2, Data: col}); err != nil {
			return nil, err
		}
	}
	d := &dataset.Dataset{
		Name:         name,
		Entity:       entity,
		Target:       "Y",
		HomeFeatures: home,
		Attrs:        []dataset.AttributeTable{{Table: attr, FK: "FK", ClosedDomain: true}},
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
