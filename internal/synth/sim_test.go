package synth

import (
	"math"
	"testing"

	"hamlet/internal/relational"
	"hamlet/internal/stats"
)

func mustWorld(t *testing.T, cfg SimConfig, seed uint64) *World {
	t.Helper()
	w, err := NewWorld(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func baseCfg() SimConfig {
	return SimConfig{Scenario: OneXr, DS: 2, DR: 4, NR: 40, P: 0.1}
}

func TestConfigValidate(t *testing.T) {
	good := baseCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []SimConfig{
		{Scenario: OneXr, DS: -1, DR: 4, NR: 40, P: 0.1},
		{Scenario: OneXr, DS: 2, DR: 0, NR: 40, P: 0.1},
		{Scenario: OneXr, DS: 2, DR: 4, NR: 1, P: 0.1},
		{Scenario: OneXr, DS: 2, DR: 4, NR: 40, P: 1.5},
		{Scenario: OneXr, DS: 2, DR: 4, NR: 40, P: 0.1, Skew: NeedleThreadSkew, NeedleP: 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestWorldShape(t *testing.T) {
	w := mustWorld(t, baseCfg(), 1)
	if len(w.R) != 40 || len(w.R[0]) != 4 {
		t.Fatalf("R shape = %dx%d", len(w.R), len(w.R[0]))
	}
	xs, fk, xr := w.FeatureLayout()
	if len(xs) != 2 || fk != 2 || len(xr) != 4 {
		t.Fatalf("layout = %v %v %v", xs, fk, xr)
	}
	if len(w.UseAllFeatures()) != 7 || len(w.NoJoinFeatures()) != 3 || len(w.NoFKFeatures()) != 6 {
		t.Fatal("model-class feature sets wrong")
	}
}

func TestSampleRespectsFD(t *testing.T) {
	w := mustWorld(t, baseCfg(), 2)
	rng := stats.NewRNG(3)
	m := w.Sample(500, rng)
	if m.NumRows() != 500 || m.NumFeatures() != 7 {
		t.Fatalf("design shape = (%d,%d)", m.NumRows(), m.NumFeatures())
	}
	_, fkIdx, xr := w.FeatureLayout()
	for i := 0; i < 500; i++ {
		fk := m.Features[fkIdx].Data[i]
		for j, col := range xr {
			if m.Features[col].Data[i] != w.R[fk][j] {
				t.Fatalf("FD FK→X_R violated at row %d feature %d", i, j)
			}
		}
	}
	if !m.Features[fkIdx].IsFK {
		t.Fatal("FK feature not marked")
	}
}

func TestOneXrLabelNoise(t *testing.T) {
	w := mustWorld(t, baseCfg(), 4)
	rng := stats.NewRNG(5)
	m := w.Sample(20000, rng)
	_, _, xr := w.FeatureLayout()
	// P(Y=0|X_r=0) must be ≈ p = 0.1.
	n0, y0 := 0, 0
	for i := 0; i < m.NumRows(); i++ {
		if m.Features[xr[0]].Data[i] == 0 {
			n0++
			if m.Y[i] == 0 {
				y0++
			}
		}
	}
	if n0 == 0 {
		t.Fatal("X_r never 0")
	}
	f := float64(y0) / float64(n0)
	if math.Abs(f-0.1) > 0.02 {
		t.Fatalf("P(Y=0|X_r=0) = %v, want ≈0.1", f)
	}
}

func TestTrueConditionalOneXr(t *testing.T) {
	w := mustWorld(t, baseCfg(), 6)
	rng := stats.NewRNG(7)
	m := w.Sample(100, rng)
	_, _, xr := w.FeatureLayout()
	for i := 0; i < 100; i++ {
		p1 := w.TrueConditional(m, i)
		if m.Features[xr[0]].Data[i] == 0 {
			if math.Abs(p1-0.9) > 1e-12 {
				t.Fatalf("P(Y=1|X_r=0) = %v", p1)
			}
		} else if math.Abs(p1-0.1) > 1e-12 {
			t.Fatalf("P(Y=1|X_r=1) = %v", p1)
		}
	}
}

func TestAllXsXrSampling(t *testing.T) {
	cfg := baseCfg()
	cfg.Scenario = AllXsXr
	w := mustWorld(t, cfg, 8)
	rng := stats.NewRNG(9)
	m := w.Sample(20000, rng)
	// Majority bit of X_R must agree with Y about 1−p of the time.
	_, fkIdx, _ := w.FeatureLayout()
	agree := 0
	for i := 0; i < m.NumRows(); i++ {
		if w.majority[m.Features[fkIdx].Data[i]] == m.Y[i] {
			agree++
		}
	}
	f := float64(agree) / float64(m.NumRows())
	if math.Abs(f-0.9) > 0.02 {
		t.Fatalf("majority/Y agreement = %v, want ≈0.9", f)
	}
	// X_S features must also agree with Y about 1−p of the time.
	xs, _, _ := w.FeatureLayout()
	agree = 0
	for i := 0; i < m.NumRows(); i++ {
		if m.Features[xs[0]].Data[i] == m.Y[i] {
			agree++
		}
	}
	f = float64(agree) / float64(m.NumRows())
	if math.Abs(f-0.9) > 0.02 {
		t.Fatalf("X_S/Y agreement = %v, want ≈0.9", f)
	}
}

func TestXsFkOnlySampling(t *testing.T) {
	cfg := baseCfg()
	cfg.Scenario = XsFkOnly
	w := mustWorld(t, cfg, 10)
	rng := stats.NewRNG(11)
	m := w.Sample(20000, rng)
	_, fkIdx, _ := w.FeatureLayout()
	agree := 0
	for i := 0; i < m.NumRows(); i++ {
		if w.ridLabel[m.Features[fkIdx].Data[i]] == m.Y[i] {
			agree++
		}
	}
	f := float64(agree) / float64(m.NumRows())
	if math.Abs(f-0.9) > 0.02 {
		t.Fatalf("ridLabel/Y agreement = %v, want ≈0.9", f)
	}
}

func TestTrueConditionalIsCalibrated(t *testing.T) {
	// Empirical check: among rows with P(Y=1|x) ∈ [a,b), the empirical
	// rate of Y=1 must fall in roughly the same band.
	for _, scen := range []Scenario{OneXr, AllXsXr, XsFkOnly} {
		cfg := baseCfg()
		cfg.Scenario = scen
		w := mustWorld(t, cfg, 12)
		rng := stats.NewRNG(13)
		m := w.Sample(40000, rng)
		var lowN, lowY, highN, highY int
		for i := 0; i < m.NumRows(); i++ {
			p1 := w.TrueConditional(m, i)
			if p1 < 0.5 {
				lowN++
				lowY += int(m.Y[i])
			} else {
				highN++
				highY += int(m.Y[i])
			}
		}
		if lowN == 0 || highN == 0 {
			t.Fatalf("%v: degenerate conditional split", scen)
		}
		fLow := float64(lowY) / float64(lowN)
		fHigh := float64(highY) / float64(highN)
		if fLow >= 0.5 || fHigh <= 0.5 {
			t.Fatalf("%v: conditional not calibrated: low=%v high=%v", scen, fLow, fHigh)
		}
	}
}

func TestNeedleThreadWorld(t *testing.T) {
	cfg := baseCfg()
	cfg.Skew = NeedleThreadSkew
	cfg.NeedleP = 0.5
	w := mustWorld(t, cfg, 14)
	// Needle RID carries X_r = 0, thread carries X_r = 1.
	if w.R[0][0] != 0 {
		t.Fatal("needle X_r wrong")
	}
	for rid := 1; rid < cfg.NR; rid++ {
		if w.R[rid][0] != 1 {
			t.Fatal("thread X_r wrong")
		}
	}
	rng := stats.NewRNG(15)
	m := w.Sample(20000, rng)
	_, fkIdx, _ := w.FeatureLayout()
	needle := 0
	for i := 0; i < m.NumRows(); i++ {
		if m.Features[fkIdx].Data[i] == 0 {
			needle++
		}
	}
	f := float64(needle) / float64(m.NumRows())
	if math.Abs(f-0.5) > 0.02 {
		t.Fatalf("needle frequency = %v, want ≈0.5", f)
	}
}

func TestZipfWorldSkewsFK(t *testing.T) {
	cfg := baseCfg()
	cfg.Skew = ZipfSkew
	cfg.ZipfS = 2
	w := mustWorld(t, cfg, 16)
	rng := stats.NewRNG(17)
	m := w.Sample(20000, rng)
	_, fkIdx, _ := w.FeatureLayout()
	counts := make([]int, cfg.NR)
	for i := 0; i < m.NumRows(); i++ {
		counts[m.Features[fkIdx].Data[i]]++
	}
	if counts[0] < counts[cfg.NR-1] {
		t.Fatal("Zipf skew should concentrate on low RIDs")
	}
	if float64(counts[0])/float64(m.NumRows()) < 0.4 {
		t.Fatalf("Zipf(s=2) head mass too small: %v", counts[0])
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	w := mustWorld(t, baseCfg(), 18)
	rng := stats.NewRNG(19)
	d, err := w.Dataset("sim", 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 400 || d.NumClasses() != 2 {
		t.Fatal("dataset shape wrong")
	}
	// The joined design matrix must satisfy the FD FK → XR0.
	m, err := d.Materialize(d.JoinAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	tab := relational.NewTable("T")
	fkIdx := m.FeatureIndex("FK")
	xrIdx := m.FeatureIndex("XR0")
	tab.MustAddColumn(&relational.Column{Name: "FK", Card: m.Features[fkIdx].Card, Data: m.Features[fkIdx].Data})
	tab.MustAddColumn(&relational.Column{Name: "XR0", Card: 2, Data: m.Features[xrIdx].Data})
	ok, err := relational.HoldsFD(tab, "FK", "XR0")
	if err != nil || !ok {
		t.Fatalf("FD violated in materialized dataset (err=%v)", err)
	}
}

func TestScenarioAndSkewStrings(t *testing.T) {
	if OneXr.String() != "OneXr" || AllXsXr.String() != "AllXsXr" || XsFkOnly.String() != "XsFkOnly" {
		t.Fatal("scenario strings")
	}
	if Scenario(9).String() == "" || Skew(9).String() == "" {
		t.Fatal("unknown enum strings should not be empty")
	}
	if NoSkew.String() != "none" || ZipfSkew.String() != "zipf" || NeedleThreadSkew.String() != "needle-and-thread" {
		t.Fatal("skew strings")
	}
}

func TestWorldDeterminism(t *testing.T) {
	a := mustWorld(t, baseCfg(), 42)
	b := mustWorld(t, baseCfg(), 42)
	for rid := range a.R {
		for j := range a.R[rid] {
			if a.R[rid][j] != b.R[rid][j] {
				t.Fatal("same-seed worlds differ")
			}
		}
	}
	ma := a.Sample(100, stats.NewRNG(1))
	mb := b.Sample(100, stats.NewRNG(1))
	for i := range ma.Y {
		if ma.Y[i] != mb.Y[i] {
			t.Fatal("same-seed samples differ")
		}
	}
}
