package hamlet

import (
	"io"

	"hamlet/internal/dataset"
	"hamlet/internal/relational"
)

// Data interchange and schema-theory surface: CSV ingestion with dictionary
// encoding, declarative dataset specs, and the Appendix C normalization
// machinery (closure, candidate keys, minimal cover, BCNF decomposition,
// lossless-join verification).

type (
	// Dictionary maps a CSV column's category labels to codes and back.
	Dictionary = relational.Dictionary
	// ReadCSVOptions configures CSV ingestion.
	ReadCSVOptions = relational.ReadCSVOptions
	// SchemaSpec declares a normalized dataset over CSV files.
	SchemaSpec = dataset.SchemaSpec
	// AttrSpec declares one attribute table inside a SchemaSpec.
	AttrSpec = dataset.AttrSpec
	// Schema is a relation schema produced by BCNF decomposition.
	Schema = relational.Schema
)

// ReadCSV ingests a header-first CSV stream into a dictionary-encoded table.
func ReadCSV(name string, r io.Reader, opts ReadCSVOptions) (*Table, map[string]*Dictionary, error) {
	return relational.ReadCSV(name, r, opts)
}

// WriteCSV writes a table as CSV, decoding through the dictionaries.
func WriteCSV(t *Table, w io.Writer, dicts map[string]*Dictionary) error {
	return relational.WriteCSV(t, w, dicts)
}

// LoadDataset reads a JSON schema spec and materializes the normalized
// dataset from its CSV files.
func LoadDataset(specPath string) (*Dataset, error) { return dataset.LoadDataset(specPath) }

// Closure returns the attribute closure attrs⁺ under an FD set.
func Closure(attrs []string, fds []FD) ([]string, error) { return relational.Closure(attrs, fds) }

// IsSuperkey reports whether attrs determine every attribute of the relation.
func IsSuperkey(attrs, all []string, fds []FD) (bool, error) {
	return relational.IsSuperkey(attrs, all, fds)
}

// CandidateKeys returns all minimal keys of a relation under an FD set.
func CandidateKeys(all []string, fds []FD) ([][]string, error) {
	return relational.CandidateKeys(all, fds)
}

// MinimalCover returns a canonical cover of an FD set.
func MinimalCover(fds []FD) ([]FD, error) { return relational.MinimalCover(fds) }

// DecomposeBCNF losslessly decomposes a relation into Boyce–Codd Normal
// Form — the "standard techniques" step of the paper's Corollary C.1 proof,
// and the inverse of the KFK join: applied to a wide joined table it
// recovers the entity/attribute-table split the decision rules operate on.
func DecomposeBCNF(base string, all []string, fds []FD) ([]Schema, error) {
	return relational.DecomposeBCNF(base, all, fds)
}

// LosslessJoin verifies a decomposition against a table instance.
func LosslessJoin(t *Table, schemas []Schema) (bool, error) {
	return relational.LosslessJoin(t, schemas)
}
