#!/bin/sh
# bench.sh — run the repo's benchmark suite and snapshot the results as JSON.
#
# Usage:
#   scripts/bench.sh                     # full suite -> BENCH_<YYYY-MM-DD>.json
#   scripts/bench.sh ForwardSel          # only benchmarks matching the pattern
#   scripts/bench.sh -count 5            # 5 samples per benchmark, so
#                                        # cmd/benchdiff can t-test the deltas
#   BENCHTIME=1x scripts/bench.sh        # override -benchtime (default 1s)
#   BENCH_OUT=new.json scripts/bench.sh  # override the output path (CI uses
#                                        # this so a same-day run can't
#                                        # overwrite the committed baseline)
#
# The JSON is {"meta": {...}, "benchmarks": [...]}: meta pins the commit,
# date, Go version, benchtime, pattern, and sample count; benchmarks is one
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op} object per
# benchmark line (repeated names = repeated -count samples). Compare two
# snapshots with `go run ./cmd/benchdiff old.json new.json` — it also still
# reads the bare-array snapshots this script emitted before the meta header
# existed.
set -eu

cd "$(dirname "$0")/.."

count=1
if [ "${1:-}" = "-count" ]; then
    count="${2:?bench.sh: -count needs a value}"
    shift 2
fi
pattern="${1:-.}"
benchtime="${BENCHTIME:-1s}"
commit="$(git rev-parse HEAD 2>/dev/null || echo "")"
goversion="$(go env GOVERSION)"
today="$(date +%F)"
out="${BENCH_OUT:-BENCH_${today}.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench.sh: go test -run ^\$ -bench $pattern -benchtime $benchtime -count $count -benchmem ./..." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count "$count" -benchmem ./... | tee "$raw" >&2

awk -v commit="$commit" -v today="$today" -v goversion="$goversion" \
    -v benchtime="$benchtime" -v pattern="$pattern" -v count="$count" '
BEGIN {
    printf "{\n  \"meta\": {\"commit\": \"%s\", \"date\": \"%s\", \"go_version\": \"%s\", \"benchtime\": \"%s\", \"pattern\": \"%s\", \"count\": %d},\n", \
        commit, today, goversion, benchtime, pattern, count
    print "  \"benchmarks\": ["
}
$1 ~ /^Benchmark/ && NF >= 3 {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3; bytes = "null"; allocs = "null"
    for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, allocs
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

echo "bench.sh: wrote $(grep -c '"name"' "$out") results to $out" >&2
