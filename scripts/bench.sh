#!/bin/sh
# bench.sh — run the repo's benchmark suite and snapshot the results as JSON.
#
# Usage:
#   scripts/bench.sh                 # full suite -> BENCH_<YYYY-MM-DD>.json
#   scripts/bench.sh ForwardSel      # only benchmarks matching the pattern
#   BENCHTIME=1x scripts/bench.sh    # override -benchtime (default 1s)
#
# The JSON is a flat array of {name, iterations, ns_per_op, bytes_per_op,
# allocs_per_op} objects, one per benchmark line, suitable for diffing
# across commits (e.g. to watch the obs-disabled overhead pair
# BenchmarkForwardSelection / BenchmarkForwardSelectionObsOff).
set -eu

cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${BENCHTIME:-1s}"
out="BENCH_$(date +%F).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench.sh: go test -run ^\$ -bench $pattern -benchtime $benchtime -benchmem ./..." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem ./... | tee "$raw" >&2

awk '
BEGIN { print "[" }
$1 ~ /^Benchmark/ && NF >= 3 {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3; bytes = "null"; allocs = "null"
    for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, allocs
}
END { print "\n]" }
' "$raw" > "$out"

echo "bench.sh: wrote $(grep -c '"name"' "$out") results to $out" >&2
