#!/bin/sh
# verify.sh — the tier-1 gate, runnable locally or in CI.
#
#   scripts/verify.sh
#
# Steps, in order (first failure stops the run):
#   1. gofmt -l must report nothing
#   2. go build ./...
#   3. go vet ./...
#   4. go test ./...
#   5. go test -race ./...
#   6. benchdiff smoke test against the committed fixture snapshots: a
#      clean comparison must exit 0 and the injected >10% regression must
#      exit 1, so the perf gate itself is gated.
set -eu

cd "$(dirname "$0")/.."

echo "verify: gofmt" >&2
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "verify: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "verify: go build ./..." >&2
go build ./...

echo "verify: go vet ./..." >&2
go vet ./...

echo "verify: go test ./..." >&2
go test ./...

echo "verify: go test -race ./..." >&2
go test -race ./...

echo "verify: benchdiff smoke" >&2
go run ./cmd/benchdiff -q cmd/benchdiff/testdata/old.json cmd/benchdiff/testdata/new_ok.json >/dev/null
if go run ./cmd/benchdiff -q cmd/benchdiff/testdata/old.json cmd/benchdiff/testdata/new_regressed.json >/dev/null 2>&1; then
    echo "verify: benchdiff failed to flag the fixture regression" >&2
    exit 1
fi

echo "verify: ok" >&2
