#!/bin/sh
# verify.sh — the tier-1 gate, runnable locally or in CI.
#
#   scripts/verify.sh           # full gate (includes go test -race)
#   scripts/verify.sh -short    # fast gate: go test -short, no -race leg
#
# Steps, in order (first failure stops the run):
#   1. gofmt -l must report nothing
#   2. go build ./...
#   3. go vet ./...
#   4. go test ./...            (-short mode: go test -short ./...)
#   5. go test -race ./...      (skipped in -short mode; CI runs the full
#      gate on one matrix leg so the race leg stays the long pole while
#      the other legs finish fast)
#   6. benchdiff smoke test against the committed fixture snapshots: a
#      clean comparison must exit 0, the injected >10% time regression must
#      exit 1, and the injected memory-only regression (B/op + allocs/op
#      moved, ns/op flat) must also exit 1, so both halves of the perf gate
#      are themselves gated.
#   7. report smoke test against the committed run-dir fixtures: tables
#      must render, the identical-run diff must exit 0, and the
#      seeded-drift fixture must exit 1, so the accuracy gate itself is
#      gated the same way.
#   8. loadgen smoke test: a short in-process load run must produce a run
#      dir whose histograms.json `report latency` renders with exit 0; the
#      committed seeded-regression fixture must make the latency gate exit
#      1, and the identical-run latency diff must exit 0.
#   9. advisord smoke test: the daemon must come up on an ephemeral port
#      (with tracing and SLO flags on), answer a loadgen -url round trip,
#      serve a /metrics exposition with a nonzero request counter and an
#      SLO burn gauge that `report watch` parses, drain cleanly on SIGTERM
#      (exit 0), remove its addrfile, and flush a histograms.json that
#      `report latency` renders.
#  10. tracing smoke test: the loadgen -url leg runs with -trace-sample 1,
#      so both sides persist traces.jsonl; a client trace ID must appear in
#      the server's traces.jsonl, `report trace client server` must render
#      the merged cross-process tree with the server span nested under the
#      client span, and `report slo` must gate the committed served-latency
#      fixture from its histograms alone.
set -eu

cd "$(dirname "$0")/.."

short=0
if [ "${1:-}" = "-short" ]; then
    short=1
    shift
fi

echo "verify: gofmt" >&2
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "verify: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "verify: go build ./..." >&2
go build ./...

echo "verify: go vet ./..." >&2
go vet ./...

if [ "$short" = 1 ]; then
    echo "verify: go test -short ./..." >&2
    go test -short ./...
else
    echo "verify: go test ./..." >&2
    go test ./...

    echo "verify: go test -race ./..." >&2
    go test -race ./...
fi

echo "verify: benchdiff smoke" >&2
go run ./cmd/benchdiff -q cmd/benchdiff/testdata/old.json cmd/benchdiff/testdata/new_ok.json >/dev/null
if go run ./cmd/benchdiff -q cmd/benchdiff/testdata/old.json cmd/benchdiff/testdata/new_regressed.json >/dev/null 2>&1; then
    echo "verify: benchdiff failed to flag the fixture regression" >&2
    exit 1
fi
if go run ./cmd/benchdiff -q cmd/benchdiff/testdata/old.json cmd/benchdiff/testdata/new_memregressed.json >/dev/null 2>&1; then
    echo "verify: benchdiff failed to flag the fixture memory regression" >&2
    exit 1
fi

echo "verify: report smoke" >&2
go run ./cmd/report tables internal/report/testdata/base >/dev/null
go run ./cmd/report diff -q internal/report/testdata/base internal/report/testdata/base >/dev/null
if go run ./cmd/report diff -q internal/report/testdata/base internal/report/testdata/drift >/dev/null 2>&1; then
    echo "verify: report diff failed to flag the seeded-drift fixture" >&2
    exit 1
fi

echo "verify: loadgen smoke" >&2
loadgen_dir="$(mktemp -d)"
trap 'rm -rf "$loadgen_dir"' EXIT
go run ./cmd/loadgen -duration 200ms -scale 0.02 -out "$loadgen_dir/run" >/dev/null
go run ./cmd/report latency "$loadgen_dir/run" >/dev/null
go run ./cmd/report latency internal/report/testdata/latency_base internal/report/testdata/latency_base >/dev/null
if go run ./cmd/report latency internal/report/testdata/latency_base internal/report/testdata/latency_regress >/dev/null 2>&1; then
    echo "verify: report latency failed to flag the seeded-regression fixture" >&2
    exit 1
fi

echo "verify: advisord smoke" >&2
go build -o "$loadgen_dir/advisord" ./cmd/advisord
"$loadgen_dir/advisord" -addr 127.0.0.1:0 -addrfile "$loadgen_dir/addr" \
    -datasets Walmart -scale 0.02 -trace-sample 1 \
    -slo-availability 0.999 -slo-latency-objective 100ms \
    -out "$loadgen_dir/adv_run" >/dev/null &
advisord_pid=$!
i=0
while [ ! -s "$loadgen_dir/addr" ]; do
    if ! kill -0 "$advisord_pid" 2>/dev/null; then
        echo "verify: advisord exited before becoming ready" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "verify: advisord never wrote its addrfile" >&2
        kill "$advisord_pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
advisord_url="http://$(cat "$loadgen_dir/addr")"
go run ./cmd/loadgen -url "$advisord_url" \
    -duration 200ms -scale 0.02 -trace-sample 1 \
    -out "$loadgen_dir/client_run" >/dev/null

# Scrape the live /metrics exposition (curl where present, wget otherwise),
# assert the request counter moved, and let `report watch` parse it end to
# end — the same surface CI uploads as an artifact.
if command -v curl >/dev/null 2>&1; then
    curl -fsS "$advisord_url/metrics" >"$loadgen_dir/metrics.prom"
else
    wget -qO "$loadgen_dir/metrics.prom" "$advisord_url/metrics"
fi
requests="$(awk '$1 == "advisord_requests_total" { print int($2) }' "$loadgen_dir/metrics.prom")"
if [ -z "$requests" ] || [ "$requests" -le 0 ]; then
    echo "verify: /metrics advisord_requests_total not positive after loadgen (got '${requests:-missing}')" >&2
    exit 1
fi
if ! grep -q 'advisord_slo_error_budget_burn' "$loadgen_dir/metrics.prom"; then
    echo "verify: /metrics is missing the SLO burn gauge despite SLO flags" >&2
    exit 1
fi
go run ./cmd/report watch -count 1 -interval 0s "$advisord_url" >/dev/null

kill -TERM "$advisord_pid"
if ! wait "$advisord_pid"; then
    echo "verify: advisord did not drain cleanly on SIGTERM" >&2
    exit 1
fi
if [ -e "$loadgen_dir/addr" ]; then
    echo "verify: advisord left a stale addrfile after clean exit" >&2
    exit 1
fi
go run ./cmd/report latency "$loadgen_dir/adv_run" >/dev/null

echo "verify: tracing smoke" >&2
for traces in "$loadgen_dir/client_run/traces.jsonl" "$loadgen_dir/adv_run/traces.jsonl"; do
    if [ ! -s "$traces" ]; then
        echo "verify: $traces missing or empty despite -trace-sample 1" >&2
        exit 1
    fi
done
# The cross-process join: a trace ID kept by the client must also have been
# kept by the server (head sampling at 1.0 propagates over the wire).
client_tid="$(sed -n '1s/.*"trace_id":"\([0-9a-f]*\)".*/\1/p' "$loadgen_dir/client_run/traces.jsonl")"
if [ -z "$client_tid" ]; then
    echo "verify: could not extract a trace ID from the client traces.jsonl" >&2
    exit 1
fi
if ! grep -q "$client_tid" "$loadgen_dir/adv_run/traces.jsonl"; then
    echo "verify: client trace $client_tid has no server half in adv_run/traces.jsonl" >&2
    exit 1
fi
go run ./cmd/report trace "$loadgen_dir/client_run" "$loadgen_dir/adv_run" >"$loadgen_dir/trace.out"
if ! grep -q '\[server\]' "$loadgen_dir/trace.out" || ! grep -Eq 'assembled .* [1-9][0-9]* complete' "$loadgen_dir/trace.out"; then
    echo "verify: report trace did not assemble a complete cross-process tree:" >&2
    cat "$loadgen_dir/trace.out" >&2
    exit 1
fi
go run ./cmd/report slo -latency-objective 5ms internal/report/testdata/served_base >/dev/null
if go run ./cmd/report slo -latency-objective 2us internal/report/testdata/served_base >/dev/null 2>&1; then
    echo "verify: report slo failed to flag the exhausted budget on the served fixture" >&2
    exit 1
fi

echo "verify: ok" >&2
